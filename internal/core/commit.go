package core

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
)

// This file is the transaction pipeline: Begin/Store/Load/Commit/Abort and
// the commit-protocol state machine. Every commit runs the same five-stage
// sequence (§4.1.1 "Transaction Commit"):
//
//	1. metadata barrier   — flush shards holding pending records that still
//	                        remap a write-set page's frames (barrierFlush)
//	2. data persistence   — clwb every write-set line, fence on the slowest
//	                        flush (flushData)
//	3. journal batch      — append the metadata records and harden them
//	4. publication        — install the new slot-shadow states
//	5. release            — drop core references, close the epoch
//
// Stages 3-4 are the commitProtocol: commitLocal is the single-shard fast
// path (one record batch into the committing core's shard — the PR 3
// behaviour, bit-for-bit), commitGlobal (global.go) is the cross-shard
// two-phase protocol used by BeginGlobal transactions whose write set spans
// multiple journal shards.

// commitProtocol is stages 3-4 of the commit pipeline: journal the
// metadata batch for the (sorted, non-empty) write-set pages, harden it,
// and publish the new slot states. start is the core's clock at the head
// of the commit (after the metadata barrier), fence the data-persistence
// fence completion. Work that carries no commit point — a global
// transaction's prepare records and their flushes — may overlap the data
// fence in simulated time (charged from start); a batch's commit point
// (the UpdateEnd-carrying flush, the coordinator End) must wait for fence.
// Implementations return the core's clock after the batch is durable.
type commitProtocol interface {
	journalAndPublish(core int, pages []int, start, fence engine.Cycles) engine.Cycles
}

// slotPub is one page's pending slot-shadow publication: the state
// snapshotted while journaling, installed once the batch is durable.
type slotPub struct {
	meta *pageMeta
	sid  int
	st   slotState
}

// Begin implements txn.Backend (ATOMIC_BEGIN: a full barrier).
func (s *SSP) Begin(core int, at engine.Cycles) engine.Cycles {
	if s.inTxn[core] {
		panic("core: nested transaction")
	}
	s.inTxn[core] = true
	s.clock(at)
	return at + s.env.BarrierCycles
}

// Store implements txn.Backend: the atomic-update protocol of Figure 4.
func (s *SSP) Store(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Store outside transaction")
	}
	if s.fallback[core] {
		return s.fbStore(core, va, data, at)
	}
	meta, t := s.translate(core, va, at)

	bm := s.wsb[core][meta.vpn]
	if bm == 0 && len(s.wsb[core]) >= s.cfg.WSBEntries {
		// Write-set buffer overflow: divert the whole transaction to the
		// software fall-back path (§3.5) and retry this store there.
		t = s.transitionToFallback(core, t)
		return s.fbStore(core, va, data, t)
	}

	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	unit := s.unitOf(lineIdx)
	bit := uint64(1) << uint(unit)

	if s.cfg.EagerFlush {
		p := &s.ePending[core]
		switch {
		case p[0].meta == meta && p[0].unit == unit:
			// Clustered store to the most recent unit: no flush yet.
		case p[1].meta == meta && p[1].unit == unit:
			p[0], p[1] = p[1], p[0] // promote; no flush
		default:
			// A third distinct unit enters the queue: the oldest ages out
			// and its write-behind flush is issued, now that its clustered
			// stores are (very likely) over — a unit the transaction
			// revisits later is simply caught dirty by the commit fence's
			// probe. Keeping the two most recent units unflushed means the
			// commit probe's write-backs never queue behind a just-issued
			// redundant flush of the same line.
			if p[1].meta != nil {
				s.lockMeta(p[1].meta)
				s.eagerFlushUnit(core, p[1].meta, p[1].unit, t)
				s.unlockMeta(p[1].meta)
			}
			if bm == 0 {
				// First write to this page in the transaction: eager
				// flushes will land durably in the page's frames, so the
				// metadata barrier of the deferred pipeline's stage 1
				// moves here — pending consolidation/release records that
				// still remap the frames must harden first. Before the
				// page lock (journalMu precedes pageMeta.mu in the lock
				// order).
				t = s.eagerBarrier(meta, t)
			}
			p[1] = p[0]
			p[0] = pendingEagerFlush{meta: meta, unit: unit}
		}
	}

	s.lockMeta(meta)
	defer s.unlockMeta(meta)
	firstTouch := bm&bit == 0
	if firstTouch {
		// First write to this unit in the transaction: remap every line of
		// the unit to the "other" page, flip the current bit, broadcast.
		begin, end := s.unitLines(unit)
		cur := (meta.current >> uint(unit)) & 1
		for li := begin; li < end; li++ {
			from := meta.lineAddr(li, cur)
			to := meta.lineAddr(li, cur^1)
			t = s.env.Caches.Retag(core, from, to, t)
		}
		meta.current ^= bit
		s.env.StatsFor(core).FlipBroadcasts++
		if s.cfg.FlipViaShootdown {
			t += s.cfg.ShootdownCycles
		} else {
			t += s.cfg.FlipCycles
		}
		if bm == 0 {
			meta.coreRef++
		}
		s.wsb[core][meta.vpn] = bm | bit
	}
	curBit := (meta.current >> uint(unit)) & 1
	target := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	t = s.env.Caches.Store(core, target, data, t)
	s.clock(t)
	return t
}

// pendingEagerFlush names one unit in a core's write-behind queue (nil
// meta = empty slot).
type pendingEagerFlush struct {
	meta *pageMeta
	unit int
}

// eagerWriteBehind is one core's write-behind queue (Config.EagerFlush):
// the two most recently stored units of its open transaction, most recent
// first. Stores to a unit cluster, so a unit aging out of the queue has
// almost always seen its last store — its eager flush then captures the
// final bytes in one write, where a flush-per-store would queue redundant
// writes behind each other on the line's bank and push the tail write-back
// past the commit. Depth two (rather than one) keeps the transaction's
// final units unflushed: their write-backs happen at the commit probe,
// concurrently and without queueing behind a just-issued eager flush of
// the same line.
type eagerWriteBehind [2]pendingEagerFlush

// eagerBarrier hardens the page's pending consolidation/release records
// before any eager data flush may land in its frames — the per-page half of
// barrierFlush, run at first-store time because EagerFlush moves the data
// writes forward. The store waits for the completion (it orders the page's
// first durable data write behind the records); with nothing pending it
// costs nothing. The barrier mark is frozen for the whole transaction: a
// consolidation needs coreRef == 0, and this store is about to hold a
// reference.
func (s *SSP) eagerBarrier(meta *pageMeta, at engine.Cycles) engine.Cycles {
	s.lockMeta(meta)
	ref := meta.barrier
	s.unlockMeta(meta)
	t := at
	s.lockShard(ref.shard)
	if !s.journals[ref.shard].Durable(ref.mark) {
		t = s.flushShard(ref.shard, -1, t)
	}
	s.unlockShard(ref.shard)
	return t
}

// eagerFlushUnit issues the eager clwbs for one unit: every retagged line
// — stored lines with their fresh data, plus (for multi-line units) the
// untouched lines carrying the committed bytes renamed to the shadow frame
// — is written back. The core does not wait; the completion is recorded in
// the page's flushDone high-water for the commit fence. Lines the
// transaction dirties again afterwards are caught by the fence's probe
// flush (flushData). Caller holds the page lock.
func (s *SSP) eagerFlushUnit(core int, meta *pageMeta, unit int, at engine.Cycles) {
	cur := (meta.current >> uint(unit)) & 1
	begin, end := s.unitLines(unit)
	fl := meta.flushDone
	for li := begin; li < end; li++ {
		done, wrote := s.env.Caches.Flush(core, meta.lineAddr(li, cur), at, stats.CatData)
		if wrote {
			s.env.StatsFor(core).EagerFlushLines++
		}
		if done > fl {
			fl = done
		}
	}
	meta.flushDone = fl
}

// Load implements txn.Backend: address translation selects P0 or P1 per
// line according to the current bitmap (§4.1.1 "Memory Read and Write").
func (s *SSP) Load(core int, va uint64, buf []byte, at engine.Cycles) engine.Cycles {
	meta, t := s.translate(core, va, at)
	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	unit := s.unitOf(lineIdx)
	s.lockMeta(meta)
	curBit := (meta.current >> uint(unit)) & 1
	pa := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	s.unlockMeta(meta)
	t = s.env.Caches.Load(core, pa, buf, t)
	s.clock(t)
	return t
}

// sortedWS returns the write-set pages in vpn order.
func (s *SSP) sortedWS(core int) []int {
	out := make([]int, 0, len(s.wsb[core]))
	for vpn := range s.wsb[core] {
		out = append(out, vpn)
	}
	sort.Ints(out)
	return out
}

// Commit implements txn.Backend: the five-stage pipeline documented at the
// top of this file, with the journal leg selected inside commit.
func (s *SSP) Commit(core int, at engine.Cycles) engine.Cycles {
	return s.commit(core, at, false)
}

// CommitRelaxed implements txn.RelaxedBackend: the same pipeline with the
// durability point deferred. Stage 1 (the metadata barrier, extended with
// the epoch leg — see barrierFlush) still runs synchronously; stage 2
// issues the data flushes without fencing on them; stages 3-4 buffer the
// journal batch into the shard's open epoch and defer publication until
// the epoch hardens. The call returns — and the transaction is
// ACKNOWLEDGED — as soon as the batch is buffered; durability follows
// within Config.DurabilityEpoch cycles (or at Sync/Drain/checkpoint,
// whichever is first). With DurabilityEpoch == 0 this is Commit exactly.
func (s *SSP) CommitRelaxed(core int, at engine.Cycles) engine.Cycles {
	return s.commit(core, at, s.cfg.DurabilityEpoch > 0)
}

func (s *SSP) commit(core int, at engine.Cycles, relaxed bool) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Commit outside transaction")
	}
	if s.fallback[core] {
		return s.fbCommit(core, at)
	}
	pages := s.sortedWS(core)

	// Select the journal leg: the single-shard fast path unless this is a
	// global transaction whose write set actually spans more than one
	// journal shard (a global transaction confined to one shard — or any
	// transaction on a single-shard machine — degrades to the fast path, so
	// JournalShards=1 never pays an extra record). Resolved BEFORE the
	// metadata barrier because the barrier's epoch leg may skip a page's
	// unsealed lastUpdate shard only when this commit's own record for the
	// page goes to the same shard — dest must see the destination exactly
	// as the dispatch does.
	var globalShards []int
	if s.globalTxn[core] && s.sharded() {
		if shards := s.participantShards(pages); len(shards) > 1 {
			globalShards = shards
		}
	}
	dest := func(meta *pageMeta) int {
		if globalShards != nil {
			return s.shardOfSlot(meta.slot)
		}
		return s.shardFor(core)
	}

	// Stage 1: metadata barrier.
	start := s.barrierFlush(core, pages, at, dest)

	var t engine.Cycles
	if relaxed && len(pages) > 0 {
		// Stage 2 issues the clwbs but does not fence; the fence moves into
		// the shard epoch, paid at hardening. Stages 3-4 buffer the batch
		// (journal.go relaxedLocalCommit / global.go relaxedGlobalCommit).
		fence := s.flushDataAsync(core, pages, start)
		if globalShards != nil {
			t = s.relaxedGlobalCommit(core, globalShards, pages, start, fence)
		} else {
			t = s.relaxedLocalCommit(core, pages, start, fence)
		}
	} else {
		// Stage 2: data persistence.
		t = s.flushData(core, pages, start)

		// Stages 3-4: journal batch + publication (protocol-specific).
		if len(pages) > 0 {
			var proto commitProtocol
			switch {
			case globalShards != nil:
				proto = &commitGlobal{s: s, shards: globalShards}
			case s.cfg.GroupCommitWindow > 0:
				proto = groupCommit{s: s}
			default:
				proto = commitLocal{s: s}
			}
			t = proto.journalAndPublish(core, pages, start, t)
		}
	}

	// Stage 5: release core references; pages that became inactive
	// consolidate in the background (off the critical path) — inline in
	// serial mode, batched per epoch in parallel mode.
	s.releaseWriteSet(core, pages, t)
	clear(s.wsb[core])
	s.inTxn[core] = false
	s.globalTxn[core] = false
	s.env.StatsFor(core).Commits++
	if s.parallel {
		s.tickEpoch(t)
	} else {
		s.maybeCheckpointAll(t)
	}
	end := t + s.env.BarrierCycles
	s.clock(end)
	return end
}

// flushData is stage 2: clwb every write-set line; the fence waits for the
// slowest flush (bank-level parallelism applies). The fence wait is
// surfaced as Stats.CommitBarrierWait — the commit-critical-path cycles the
// core spent blocked on its data-flush barrier.
//
// In eager mode (Config.EagerFlush) each unit's lines were written back at
// first-store time, so the loop degenerates to a probe: lines the
// transaction did not dirty again are already clean (the Flush performs no
// write and costs no memory time) and the fence reduces to the max of the
// pages' outstanding in-flight completions — only lines re-dirtied since
// their eager flush still pay a commit-time write-back.
func (s *SSP) flushData(core int, pages []int, at engine.Cycles) engine.Cycles {
	fence := at
	// The write-behind slot needs no separate flush: its unit is dirty and
	// the probe below writes it back as part of the fence.
	s.ePending[core] = eagerWriteBehind{}
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		// The page's in-flight completion high-water covers eager-mode
		// write-behind flushes and relaxed commits' issued-but-unfenced
		// flushes alike: a synchronous fence over this page must not
		// under-wait either.
		if (s.cfg.EagerFlush || s.cfg.DurabilityEpoch > 0) && meta.flushDone > fence {
			fence = meta.flushDone
		}
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				done, _ := s.env.Caches.Flush(core, meta.lineAddr(li, cur), at, stats.CatData)
				fence = engine.MaxCycles(fence, done)
			}
		}
		s.unlockMeta(meta)
	}
	s.env.StatsFor(core).CommitBarrierWait += uint64(fence - at)
	return fence
}

// flushDataAsync is stage 2 of a relaxed commit: issue every write-set
// line's clwb but do not fence — the core proceeds as soon as the flushes
// are in flight. The max completion is returned for the shard epoch's
// fence (hardening pays the wait instead of the committer, so no
// CommitBarrierWait is charged) and recorded in each page's flushDone
// high-water, so any later synchronous fence over the page over-waits
// rather than under-waits.
func (s *SSP) flushDataAsync(core int, pages []int, at engine.Cycles) engine.Cycles {
	fence := at
	s.ePending[core] = eagerWriteBehind{}
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		if meta.flushDone > fence {
			fence = meta.flushDone
		}
		fl := meta.flushDone
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				done, _ := s.env.Caches.Flush(core, meta.lineAddr(li, cur), at, stats.CatData)
				if done > fence {
					fence = done
				}
				if done > fl {
					fl = done
				}
			}
		}
		meta.flushDone = fl
		s.unlockMeta(meta)
	}
	return fence
}

// releaseWriteSet is stage 5's reference drop: pages whose last reference
// went away are queued (parallel) or consolidated inline (serial).
func (s *SSP) releaseWriteSet(core int, pages []int, at engine.Cycles) {
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		s.lockMeta(meta)
		meta.coreRef--
		inactive := meta.coreRef == 0 && meta.tlbRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
		s.unlockMeta(meta)
		if !inactive {
			continue
		}
		if s.parallel {
			s.queueConsolidation(vpn)
		} else {
			s.consolidate(meta, at)
		}
	}
}

// publishSlots is stage 4: install the new slot-shadow states now that
// their journal records are durable. A checkpoint running concurrently on
// another shard snapshots slotShadow and writes it to the persistent slot
// array, and must never persist state whose journal records a crash could
// still lose. The version guard keeps a commit from clobbering a newer
// state another core published for a shared page meanwhile.
func (s *SSP) publishSlots(pubs []slotPub) {
	for _, p := range pubs {
		s.lockMeta(p.meta)
		if p.st.ver > s.slotShadow[p.sid].ver {
			s.slotShadow[p.sid] = p.st
		}
		s.unlockMeta(p.meta)
	}
}

// snapshotPage commits page vpn's speculative bits into its committed
// bitmap and snapshots the slot state (with a fresh update version) under
// the page's lock — the per-page half of stage 3, shared by both protocols.
//
// Note on shared pages: if another core's open transaction on this page
// committed its bits just before us (under this page lock) but its shard
// flush is still in flight, our snapshot carries those bits with a newer
// version. That is safe under the machine's crash model — power failure is
// injected only in serial execution (where a commit runs to completion
// before the next begins) or at quiescence (where every flush has landed) —
// but a hardware realisation with per-controller journals would need a
// cross-shard ordering fence here.
func (s *SSP) snapshotPage(core int, vpn int) slotPub {
	meta := s.lookupMeta(vpn)
	bm := s.wsb[core][vpn]
	s.lockMeta(meta)
	meta.committed = (meta.committed &^ bm) | (meta.current & bm)
	st := slotState{vpn: vpn, ppn0: meta.ppn0, ppn1: meta.ppn1, committed: meta.committed, ver: s.allocVer()}
	sid := meta.slot
	s.unlockMeta(meta)
	return slotPub{meta: meta, sid: sid, st: st}
}

// commitLocal is the single-shard fast path: one record batch (recUpdate…
// recUpdateEnd) appended to the committing core's shard under that shard's
// lock only, then a shard flush makes the transaction durable. The
// slot-shadow snapshot (and its update version) is taken under each page's
// own lock, so commits on other shards — even to other pages of the same
// slot array — proceed concurrently.
type commitLocal struct{ s *SSP }

// The single-shard batch cannot overlap the data fence: its flush hardens
// the UpdateEnd seal — the commit point — so everything runs from fence.
func (l commitLocal) journalAndPublish(core int, pages []int, _, fence engine.Cycles) engine.Cycles {
	s := l.s
	si := s.shardFor(core)
	s.lockShard(si)
	t, needCkpt := s.localCommitLocked(si, core, pages, fence)
	s.unlockShard(si)
	if needCkpt && s.parallel {
		// Serial mode checkpoints after stage 5's consolidations (Commit's
		// tail); parallel mode drains here, re-acquiring structMu → shard
		// lock in order (drainShardCheckpoint rechecks the trigger under
		// the locks).
		s.drainShardCheckpoint(si, t)
	}
	return t
}

// barrierFlush persists every journal shard holding a pending
// consolidation/release record of a write-set page (the metadata barrier of
// consolidate.go): durably-flushed data must never land in a frame that
// undrained journal records still remap. pages must be sorted so serial
// runs flush shards in a deterministic order.
//
// The shard flushes are independent rings on independent NVRAM regions, so
// they are issued concurrently in simulated time: each from `at`, the
// barrier charging the max — not the sum — of their completions (the same
// simulated-hardware rule as the cross-shard prepare fan-out in global.go).
// A shard already flushed for an earlier page is skipped — that flush
// drained everything pending, which covers every mark taken before this
// commit began (the pages' barrier marks are frozen while core-referenced).
//
// In relaxed-durability mode (Config.DurabilityEpoch > 0) the barrier
// grows a second, epoch leg: each page's most recent update/prepare record
// (pageMeta.lastUpdate) must be durable before a new record carries the
// page's CUMULATIVE committed bitmap into a different shard — otherwise a
// crash could seal the cumulative state while dropping the open epoch that
// produced it, reviving the earlier transaction on this page alone and
// tearing it across its other pages. dest names the shard this commit's
// own record for the page will go to; a lastUpdate in the SAME shard needs
// no barrier (ring-prefix order seals them together or drops them
// together). A nil dest never skips (the fall-back path, whose in-place
// data flushes have no journal destination at all).
func (s *SSP) barrierFlush(core int, pages []int, at engine.Cycles, dest func(meta *pageMeta) int) engine.Cycles {
	fence := at
	var flushed [stats.MaxJournalShards]bool
	for _, vpn := range pages {
		meta := s.lookupMeta(vpn)
		s.lockMeta(meta)
		ref := meta.barrier
		upd := meta.lastUpdate
		s.unlockMeta(meta)
		if !flushed[ref.shard] {
			s.lockShard(ref.shard)
			if !s.journals[ref.shard].Durable(ref.mark) {
				if done := s.flushShard(ref.shard, core, at); done > fence {
					fence = done
				}
				flushed[ref.shard] = true
			}
			s.unlockShard(ref.shard)
		}
		if s.cfg.DurabilityEpoch <= 0 || flushed[upd.shard] {
			continue
		}
		if dest != nil && dest(meta) == upd.shard {
			continue
		}
		s.lockShard(upd.shard)
		if !s.journals[upd.shard].Durable(upd.mark) {
			if done := s.hardenShardLocked(upd.shard, core, at); done > fence {
				fence = done
			}
			flushed[upd.shard] = true
		}
		s.unlockShard(upd.shard)
	}
	return fence
}

// Abort implements txn.Backend: squash speculative lines and flip the
// current bits back; committed data was never touched.
func (s *SSP) Abort(core int, at engine.Cycles) engine.Cycles {
	if !s.inTxn[core] {
		panic("core: Abort outside transaction")
	}
	if s.fallback[core] {
		return s.fbAbort(core, at)
	}
	s.ePending[core] = eagerWriteBehind{} // squashed lines need no write-behind
	t := at
	for _, vpn := range s.sortedWS(core) {
		meta := s.lookupMeta(vpn)
		bm := s.wsb[core][vpn]
		s.lockMeta(meta)
		for unit := 0; unit < memsim.LinesPerPage/s.cfg.SubPageLines; unit++ {
			if bm&(1<<uint(unit)) == 0 {
				continue
			}
			cur := (meta.current >> uint(unit)) & 1
			begin, end := s.unitLines(unit)
			for li := begin; li < end; li++ {
				s.env.Caches.InvalidateLine(meta.lineAddr(li, cur))
			}
			meta.current ^= 1 << uint(unit)
			s.env.StatsFor(core).FlipBroadcasts++
		}
		meta.coreRef--
		inactive := meta.coreRef == 0 && meta.tlbRef == 0 && meta.committed != 0 && !s.cfg.LazyConsolidation
		s.unlockMeta(meta)
		if !inactive {
			continue
		}
		if s.parallel {
			s.queueConsolidation(vpn)
		} else {
			s.consolidate(meta, t)
		}
	}
	clear(s.wsb[core])
	s.inTxn[core] = false
	s.globalTxn[core] = false
	s.env.StatsFor(core).Aborts++
	if s.parallel {
		s.tickEpoch(t)
	}
	s.clock(t)
	return t + s.env.BarrierCycles
}

// StoreNT implements txn.Backend: a plain store to the current location;
// not failure-atomic (a later transactional remap of the line write-backs
// the dirty data first — cachesim.Retag's precondition).
func (s *SSP) StoreNT(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles {
	meta, t := s.translate(core, va, at)
	off := int(va & (memsim.PageBytes - 1))
	lineIdx := off / memsim.LineBytes
	s.lockMeta(meta)
	curBit := (meta.current >> uint(s.unitOf(lineIdx))) & 1
	pa := meta.lineAddr(lineIdx, curBit) + memsim.PAddr(off&(memsim.LineBytes-1))
	s.unlockMeta(meta)
	t = s.env.Caches.Store(core, pa, data, t)
	s.clock(t)
	return t
}

// Drain implements txn.Backend: any batched consolidation work runs to
// completion (serial mode has none pending — consolidation and
// checkpointing run synchronously in simulated time), then — in
// relaxed-durability mode — every shard's open epoch hardens, so a
// quiescent machine is always fully durable (after the consolidation
// drain, whose records the hardening must cover).
func (s *SSP) Drain(at engine.Cycles) engine.Cycles {
	t := engine.MaxCycles(at, s.nowCycles())
	if s.parallel {
		s.drainConsolQueue(t)
		t = engine.MaxCycles(t, s.nowCycles())
	}
	if s.cfg.DurabilityEpoch > 0 {
		t = s.hardenAllShards(-1, t)
		s.clock(t)
	}
	return t
}
