package core

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/txn"
	"repro/internal/vm"
	"repro/internal/wal"
)

// testEnv assembles a minimal environment around the SSP backend.
func testEnv(t *testing.T, cores int) (*txn.Env, *SSP) {
	t.Helper()
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 24 << 20
	mem := memsim.New(mcfg, st)
	lcfg := vm.DefaultLayoutConfig(cores)
	lcfg.MaxHeapPages = 512
	lcfg.SSPSlots = 64
	lcfg.JournalBytes = 8 << 10
	lcfg.LogBytes = 32 << 10
	layout := vm.NewLayout(mcfg, lcfg)
	env := &txn.Env{
		Mem:           mem,
		Caches:        cachesim.New(cachesim.DefaultConfig(cores), mem, st),
		PT:            vm.NewPageTable(mem, layout),
		Frames:        vm.NewFrameAlloc(layout),
		Layout:        layout,
		Stats:         st,
		BarrierCycles: 30,
	}
	for c := 0; c < cores; c++ {
		env.TLBs = append(env.TLBs, tlbsim.New(8, st)) // tiny TLB: evictions are easy to force
	}
	vm.Format(mem, layout)
	cfg := DefaultConfig()
	cfg.Entries = 64
	cfg.ResidentEntries = 64
	s := NewSSP(env, cfg, true)
	return env, s
}

// mapPage maps heap vpn to a fresh frame.
func mapPage(env *txn.Env, vpn int) {
	frame := env.Frames.Alloc()
	env.PT.Set(vpn, frame, 0)
}

func va(vpn, line int) uint64 {
	return vm.VAOf(vpn) + uint64(line)*memsim.LineBytes
}

func TestAtomicUpdateFlipsBitmaps(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	s.Begin(0, 0)
	s.Store(0, va(0, 3), []byte{1, 2, 3, 4, 5, 6, 7, 8}, 100)
	meta := s.metaOf(0)
	if meta.current&(1<<3) == 0 {
		t.Error("current bit not flipped on first write")
	}
	if meta.committed&(1<<3) != 0 {
		t.Error("committed bit changed before commit")
	}
	if s.wsb[0][0]&(1<<3) == 0 {
		t.Error("updated bit not set in write-set buffer")
	}
	if env.Stats.FlipBroadcasts != 1 {
		t.Errorf("flip broadcasts = %d", env.Stats.FlipBroadcasts)
	}
	// Second write to the same line: no second flip.
	s.Store(0, va(0, 3)+8, []byte{9}, 200)
	if env.Stats.FlipBroadcasts != 1 {
		t.Errorf("repeated write broadcast again: %d", env.Stats.FlipBroadcasts)
	}
	s.Commit(0, 300)
	if meta.committed&(1<<3) == 0 {
		t.Error("committed bit not updated at commit")
	}
	if meta.current != meta.committed {
		t.Error("current != committed after commit")
	}
	if s.wsb[0][0] != 0 && len(s.wsb[0]) != 0 {
		t.Error("write-set buffer not cleared")
	}
}

func TestCommittedDataNeverOverwrittenInPlace(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	// Commit value 1 to line 0, remember which frame holds it.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{1}, 0)
	s.Commit(0, 0)
	meta := s.metaOf(0)
	committedSide := meta.committed & 1
	committedPA := meta.lineAddr(0, committedSide)
	var durable [1]byte
	env.Mem.Peek(committedPA, durable[:])
	if durable[0] != 1 {
		t.Fatalf("committed data not durable: %d", durable[0])
	}
	// A new transaction writing the same line must target the other frame.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{2}, 0)
	env.Caches.FlushAll(0, stats.CatData) // even forcing write-backs...
	env.Mem.Peek(committedPA, durable[:])
	if durable[0] != 1 {
		t.Fatal("speculative write reached the committed frame in place")
	}
	s.Commit(0, 0)
}

func TestAbortRestoresCurrentBits(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	s.Begin(0, 0)
	s.Store(0, va(0, 5), []byte{7}, 0)
	s.Commit(0, 0)
	meta := s.metaOf(0)
	before := meta.current

	s.Begin(0, 0)
	s.Store(0, va(0, 5), []byte{8}, 0)
	s.Store(0, va(0, 9), []byte{9}, 0)
	s.Abort(0, 0)
	if meta.current != before {
		t.Error("abort did not restore current bitmap")
	}
	var buf [1]byte
	s.Load(0, va(0, 5), buf[:], 0)
	if buf[0] != 7 {
		t.Errorf("read after abort: %d, want 7", buf[0])
	}
	if env.Stats.Aborts != 1 {
		t.Errorf("aborts = %d", env.Stats.Aborts)
	}
}

func TestTLBEvictionTriggersConsolidation(t *testing.T) {
	env, s := testEnv(t, 1)
	for vpn := 0; vpn < 12; vpn++ {
		mapPage(env, vpn)
	}
	// Dirty page 0 so it has a split committed bitmap.
	s.Begin(0, 0)
	s.Store(0, va(0, 1), []byte{1}, 0)
	s.Commit(0, 0)
	if s.metaOf(0).committed == 0 {
		t.Fatal("page 0 has no split state")
	}
	// Touch 11 more pages through the 8-entry TLB: page 0 must get evicted
	// and consolidated.
	for vpn := 1; vpn < 12; vpn++ {
		s.Begin(0, 0)
		s.Store(0, va(vpn, 0), []byte{byte(vpn)}, 0)
		s.Commit(0, 0)
	}
	if env.Stats.Consolidations == 0 {
		t.Fatal("no consolidation after TLB pressure")
	}
	if s.metaOf(0).committed != 0 {
		t.Error("page 0 not consolidated")
	}
	// The data survives consolidation.
	var buf [1]byte
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 1 {
		t.Errorf("consolidation lost data: %d", buf[0])
	}
}

func TestConsolidationCopiesMinority(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	// Commit 3 lines: committed bitmap has 3 ones -> minority on P1.
	s.Begin(0, 0)
	for line := 0; line < 3; line++ {
		s.Store(0, va(0, line), []byte{byte(line + 1)}, 0)
	}
	s.Commit(0, 0)
	meta := s.metaOf(0)
	p0 := meta.ppn0
	before := env.Stats.ConsolidatedLines
	env.TLBs[0].Invalidate(0) // page becomes inactive; eager consolidation fires
	if env.Stats.ConsolidatedLines-before != 3 {
		t.Errorf("copied %d lines, want 3", env.Stats.ConsolidatedLines-before)
	}
	if meta.ppn0 != p0 {
		t.Error("minority copy should keep P0 as survivor")
	}
	if meta.committed != 0 || meta.current != 0 {
		t.Error("bitmaps not reset after consolidation")
	}
	for line := 0; line < 3; line++ {
		var buf [1]byte
		s.Load(0, va(0, line), buf[:], 0)
		if buf[0] != byte(line+1) {
			t.Errorf("line %d lost: %d", line, buf[0])
		}
	}
}

func TestConsolidationSwitchesToMajoritySide(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	// Commit 40 lines (> 32): majority on P1, survivor must be P1 and the
	// page table must repoint.
	s.Begin(0, 0)
	for line := 0; line < 40; line++ {
		s.Store(0, va(0, line), []byte{byte(line + 1)}, 0)
	}
	s.Commit(0, 0)
	meta := s.metaOf(0)
	oldP1 := meta.ppn1
	before := env.Stats.ConsolidatedLines
	env.TLBs[0].Invalidate(0)
	if copied := env.Stats.ConsolidatedLines - before; copied != 24 {
		t.Errorf("copied %d lines, want 24 (the minority)", copied)
	}
	if meta.ppn0 != oldP1 {
		t.Error("survivor should be the old shadow page")
	}
	if pa, _ := env.PT.Lookup(0); pa != meta.ppn0 {
		t.Error("page table not repointed to survivor")
	}
}

func TestFallbackOnWSBOverflow(t *testing.T) {
	env, s := testEnv(t, 1)
	cfgPages := s.cfg.WSBEntries + 3
	for vpn := 0; vpn < cfgPages; vpn++ {
		mapPage(env, vpn)
	}
	s.cfg.WSBEntries = 4
	s.Begin(0, 0)
	for vpn := 0; vpn < 8; vpn++ {
		s.Store(0, va(vpn, 0), []byte{byte(vpn + 1)}, 0)
	}
	if !s.fallback[0] {
		t.Fatal("transaction did not divert to the fall-back path")
	}
	s.Commit(0, 0)
	if env.Stats.FallbackTxns != 1 {
		t.Errorf("fallback txns = %d", env.Stats.FallbackTxns)
	}
	// All 8 writes are durable.
	for vpn := 0; vpn < 8; vpn++ {
		var buf [1]byte
		s.Load(0, va(vpn, 0), buf[:], 0)
		if buf[0] != byte(vpn+1) {
			t.Errorf("page %d lost after fallback commit: %d", vpn, buf[0])
		}
	}
	// And survive a crash.
	s.Crash()
	env.Caches.DropAll()
	for _, tl := range env.TLBs {
		tl.Drop()
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	env.PT.Rebuild()
	for vpn := 0; vpn < 8; vpn++ {
		var buf [1]byte
		s.Load(0, va(vpn, 0), buf[:], 0)
		if buf[0] != byte(vpn+1) {
			t.Errorf("page %d lost after crash: %d", vpn, buf[0])
		}
	}
}

func TestFallbackAbortRollsBack(t *testing.T) {
	env, s := testEnv(t, 1)
	for vpn := 0; vpn < 8; vpn++ {
		mapPage(env, vpn)
	}
	// Committed baseline.
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{0xAA}, 0)
	s.Commit(0, 0)

	s.cfg.WSBEntries = 2
	s.Begin(0, 0)
	for vpn := 0; vpn < 6; vpn++ {
		s.Store(0, va(vpn, 0), []byte{0xBB}, 0)
	}
	if !s.fallback[0] {
		t.Fatal("no fallback")
	}
	s.Abort(0, 0)
	var buf [1]byte
	s.Load(0, va(0, 0), buf[:], 0)
	if buf[0] != 0xAA {
		t.Errorf("fallback abort lost committed data: %#x", buf[0])
	}
	s.Load(0, va(5, 0), buf[:], 0)
	if buf[0] != 0 {
		t.Errorf("fallback abort leaked: %#x", buf[0])
	}
}

func TestCheckpointTruncatesJournal(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	// Fill the journal past the high-water mark with many commits.
	for i := 0; i < 400; i++ {
		s.Begin(0, 0)
		s.Store(0, va(0, i%64), []byte{byte(i)}, 0)
		s.Commit(0, 0)
	}
	if env.Stats.Checkpoints == 0 {
		t.Fatal("no checkpoint despite journal pressure")
	}
	if s.journals[0].Used() >= s.journals[0].Capacity() {
		t.Error("journal overflowed")
	}
	// The persistent slot array must now carry the page's state.
	var slotBuf [slotBytes]byte
	env.Mem.Peek(s.slotAddr(s.metaOf(0).slot), slotBuf[:])
	st := decodeSlot(slotBuf[:], env.Layout.FrameAddr)
	if st.vpn != 0 {
		t.Errorf("checkpointed slot vpn = %d", st.vpn)
	}
}

func TestSlotEncodingRoundTrip(t *testing.T) {
	env, _ := testEnv(t, 1)
	frames := []memsim.PAddr{env.Layout.FrameAddr(3), env.Layout.FrameAddr(7)}
	cases := []slotState{
		{vpn: -1, ppn1: frames[1]},
		{vpn: 42, ppn0: frames[0], ppn1: frames[1], committed: 0xDEADBEEF},
	}
	for _, st := range cases {
		got := decodeSlot(encodeSlot(st, env.Layout.FrameIndex), env.Layout.FrameAddr)
		if got.vpn != st.vpn || got.ppn1 != st.ppn1 || got.committed != st.committed {
			t.Errorf("slot round trip: %+v -> %+v", st, got)
		}
		if st.vpn >= 0 && got.ppn0 != st.ppn0 {
			t.Errorf("ppn0 lost: %+v -> %+v", st, got)
		}
	}
}

func TestJournalPayloadRoundTrip(t *testing.T) {
	env, _ := testEnv(t, 1)
	st := slotState{vpn: 9, ppn0: env.Layout.FrameAddr(1), ppn1: env.Layout.FrameAddr(2), committed: 0x55, ver: 7}
	// The paper-model 24-byte record (no version)...
	sid, got := decodeJournalPayload(encodeJournalPayload(13, st, env.Layout.FrameIndex, false), env.Layout.FrameAddr)
	if sid != 13 || got.vpn != 9 || got.ppn0 != st.ppn0 || got.ppn1 != st.ppn1 || got.committed != 0x55 {
		t.Errorf("journal payload round trip: %+v (sid %d)", got, sid)
	}
	if got.ver != 0 {
		t.Errorf("version leaked into the unsharded payload: %d", got.ver)
	}
	// ...and the sharded 28-byte record carrying the slot update version.
	sid, got = decodeJournalPayload(encodeJournalPayload(13, st, env.Layout.FrameIndex, true), env.Layout.FrameAddr)
	if sid != 13 || got.vpn != 9 || got.committed != 0x55 || got.ver != 7 {
		t.Errorf("versioned journal payload round trip: %+v (sid %d)", got, sid)
	}
}

func TestLRUSetResidency(t *testing.T) {
	l := newLRUSet(2)
	if l.Touch(1) {
		t.Error("first touch should miss")
	}
	if !l.Touch(1) {
		t.Error("second touch should hit")
	}
	l.Touch(2)
	l.Touch(3) // evicts 1 (LRU)
	if l.Touch(1) {
		t.Error("evicted entry should miss")
	}
	if l.Touch(3) { // 3 was just... 1's insert evicted 2; 3 should still be resident
		// Touch(1) inserted 1 and evicted the LRU (2), so 3 remains.
	} else {
		t.Error("3 should still be resident")
	}
	l.Reset()
	if l.Touch(3) {
		t.Error("reset did not clear the set")
	}
}

func TestMultiCoreSamePageDifferentLines(t *testing.T) {
	env, s := testEnv(t, 2)
	mapPage(env, 0)
	// Two cores hold open transactions on different lines of the same page
	// simultaneously — the per-core updated bitmaps and shared current
	// bitmap of Figure 1.
	s.Begin(0, 0)
	s.Begin(1, 0)
	s.Store(0, va(0, 1), []byte{0x11}, 0)
	s.Store(1, va(0, 2), []byte{0x22}, 0)
	meta := s.metaOf(0)
	if meta.coreRef != 2 {
		t.Errorf("core refcount = %d, want 2", meta.coreRef)
	}
	s.Commit(0, 0)
	if meta.committed&(1<<1) == 0 {
		t.Error("core 0's line not committed")
	}
	if meta.committed&(1<<2) != 0 {
		t.Error("core 1's uncommitted line leaked into committed bitmap")
	}
	s.Commit(1, 0)
	if meta.committed&(1<<2) == 0 {
		t.Error("core 1's line not committed")
	}
	var buf [1]byte
	s.Load(0, va(0, 1), buf[:], 0)
	if buf[0] != 0x11 {
		t.Error("core 0 data lost")
	}
	s.Load(1, va(0, 2), buf[:], 0)
	if buf[0] != 0x22 {
		t.Error("core 1 data lost")
	}
}

func TestSubPageGranularity(t *testing.T) {
	env, _ := testEnv(t, 1)
	cfg := DefaultConfig()
	cfg.Entries = 64
	cfg.ResidentEntries = 64
	cfg.SubPageLines = 4 // 256-byte sub-pages (§4.3)
	s := NewSSP(env, cfg, false)
	// testEnv's NewSSP already formatted; Recover rebuilds from that
	// image (including frame reservations for the slot spares).
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	mapPage(env, 0)
	s.Begin(0, 0)
	s.Store(0, va(0, 5), []byte{1}, 0) // unit 1 covers lines 4..7
	s.Commit(0, 0)
	meta := s.metaOf(0)
	if meta.committed != 1<<1 {
		t.Errorf("committed bitmap = %#x, want unit bit 1", meta.committed)
	}
	// Lines 4..7 all read back through the new side consistently.
	var buf [1]byte
	s.Load(0, va(0, 5), buf[:], 0)
	if buf[0] != 1 {
		t.Errorf("sub-page data lost: %d", buf[0])
	}
}

func TestRecoverySkipsUnsealedBatch(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	mapPage(env, 1)
	s.Begin(0, 0)
	s.Store(0, va(0, 0), []byte{1}, 0)
	s.Commit(0, 0)

	// Forge an unsealed batch directly in the journal: an update record
	// with no recUpdateEnd.
	st := slotState{vpn: 1, ppn0: mustPTE(env, 1), ppn1: s.slotShadow[1].ppn1, committed: 1, ver: s.allocVer()}
	s.journals[0].Append(wal.Record{TID: s.allocTID(), Kind: recUpdate, Payload: s.journalPayload(1, st)}, 0)
	s.journals[0].Flush(0)

	s.Crash()
	env.Caches.DropAll()
	env.TLBs[0].Drop()
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if env.Stats.RolledBackTxns == 0 {
		t.Error("unsealed batch not counted as rolled back")
	}
	if s.slotShadow[1].vpn == 1 {
		t.Error("unsealed update applied during recovery")
	}
}

func mustPTE(env *txn.Env, vpn int) memsim.PAddr {
	pa, ok := env.PT.Lookup(vpn)
	if !ok {
		panic("unmapped")
	}
	return pa
}

func TestDrainReturnsLatestTime(t *testing.T) {
	env, s := testEnv(t, 1)
	mapPage(env, 0)
	s.Begin(0, 100)
	s.Store(0, va(0, 0), []byte{1}, 100)
	end := s.Commit(0, 100)
	if d := s.Drain(50); d < end {
		t.Errorf("drain returned %d, before commit end %d", d, end)
	}
	_ = engine.Cycles(0)
}
