// Package txn defines the contract between the simulated machine and the
// failure-atomicity mechanisms it evaluates: the shared hardware environment
// (Env) and the Backend interface implemented by SSP (internal/core) and the
// two hardware-logging baselines (internal/logging).
//
// The programming model mirrors the paper's ISA extension (§3.1):
// Begin/Commit bracket a failure-atomic section (ATOMIC_BEGIN/ATOMIC_END,
// full memory barriers) and Store is an ATOMIC_STORE whose effects persist
// all-or-nothing. Isolation is the application's job (locks), exactly as in
// the paper.
package txn

import (
	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/vm"
)

// Env bundles the simulated hardware every backend drives.
type Env struct {
	Mem    *memsim.Memory
	Caches *cachesim.Hierarchy
	TLBs   []*tlbsim.TLB
	PT     *vm.PageTable
	Frames *vm.FrameAlloc
	Layout vm.Layout
	Stats  *stats.Stats

	// PerCore optionally holds one private counter shard per core. When a
	// machine runs its cores on concurrent goroutines, counters updated on
	// a core's execution path (commits, log records, flips) go to the
	// core's shard via StatsFor so no lock is needed; counters updated
	// under a shared structure's lock stay on Stats. Aggregation is
	// order-independent (see stats.Sharded). Nil in single-goroutine
	// setups: StatsFor then falls back to Stats and behaviour is exactly
	// the pre-sharding one.
	PerCore []*stats.Stats

	// BarrierCycles is the cost of a full memory barrier
	// (ATOMIC_BEGIN/ATOMIC_END act as full barriers, §3.1).
	BarrierCycles engine.Cycles
	// STLBCycles is the extra latency of an L2 STLB hit.
	STLBCycles engine.Cycles

	// Sched is the machine's deterministic bounded-lag window scheduler
	// (machine.Config.TimeWindow > 0), or nil in free-running mode. While
	// Sched.Windowed() is true a backend must not block in host time
	// (sleeps, bare channel waits) on another core's progress — it parks
	// through the scheduler instead, so lockstep windows keep advancing and
	// wake-up order stays deterministic.
	Sched WindowScheduler
}

// WindowScheduler is the deterministic window scheduler's backend-facing
// hook set. Core execution inside a windowed Machine.Run is serialised onto
// one execution slot granted in min-(clock, core-index) order, so any
// host-time rendezvous between cores would deadlock; these methods are the
// scheduler-mediated replacements.
type WindowScheduler interface {
	// Windowed reports whether the scheduler currently governs core
	// execution (inside a windowed Machine.Run). Backends check it at each
	// decision point; it never changes while a core is executing.
	Windowed() bool

	// WaitCommitWindow parks the calling core until no other schedulable
	// core's clock is <= deadline — the deterministic replacement for the
	// group-commit leader's host-time rendezvous sleep. Cores parked on
	// locks, tickets, host-side events, or their own rendezvous do not
	// count as schedulable (they cannot commit before resuming), so two
	// leaders can never wait on each other. The caller must hold no backend
	// locks.
	WaitCommitWindow(core int, deadline engine.Cycles)

	// TicketPark parks the calling core until TicketWake names it — the
	// deterministic replacement for a follower's flush-ticket channel wait.
	// The caller must hold no backend locks.
	TicketPark(core int)

	// TicketWake readies previously TicketParked cores; the caller keeps
	// the execution slot. Writes the caller made before TicketWake are
	// visible to the woken cores when they resume.
	TicketWake(cores []int)
}

// Peeker is an optional Backend capability: resolve the physical line
// address that currently holds the program-visible value of the cache line
// containing va, without advancing simulated time or touching TLB, cache,
// or metadata state. For write-in-place designs that is the page table's
// home frame; for SSP it follows the page's current-bit redirection into
// the shadow sub-page. ok is false when va's page is unmapped.
//
// The machine's WindowParallel mode requires it to seed the speculative
// heap image at Run start; callers must hold the machine quiescent.
type Peeker interface {
	PeekLineAddr(va uint64) (pa memsim.PAddr, ok bool)
}

// Cores returns the number of simulated cores.
func (e *Env) Cores() int { return len(e.TLBs) }

// StatsFor returns the counter shard for core's execution path.
func (e *Env) StatsFor(core int) *stats.Stats {
	if e.PerCore != nil {
		return e.PerCore[core]
	}
	return e.Stats
}

// Translate resolves va's page through core's TLB, charging a page-table
// walk on a miss, and returns the page's frame base (PPN0) plus completion
// time. It panics on unmapped addresses — the heap maps pages at allocation.
func (e *Env) Translate(core int, va uint64, at engine.Cycles) (memsim.PAddr, engine.Cycles) {
	vpn := vm.VPNOf(va)
	if ppn, level, hit := e.TLBs[core].Lookup(tlbsim.VPN(vpn)); hit {
		if level == 2 {
			at += e.STLBCycles
		}
		return ppn, at
	}
	ppn, done, ok := e.PT.Walk(vpn, at)
	if !ok {
		panic("txn: access to unmapped persistent page")
	}
	e.TLBs[core].Insert(tlbsim.VPN(vpn), ppn)
	return ppn, done
}

// Backend is a failure-atomicity mechanism under evaluation. All timing
// methods take the core's current clock and return its new value.
//
// Threading contract: by default the simulator is single-goroutine and
// implementations need no locking. A backend that additionally implements
// ParallelAware supports the machine's concurrent mode, where each core's
// methods are invoked from that core's own goroutine: calls on the SAME
// core are always serial, calls on DIFFERENT cores may overlap and the
// implementation must synchronise its shared state.
type Backend interface {
	// Name identifies the design ("SSP", "UNDO-LOG", "REDO-LOG").
	Name() string

	// Begin opens a failure-atomic section on core.
	Begin(core int, at engine.Cycles) engine.Cycles

	// Store performs an ATOMIC_STORE of data (within one cache line) at
	// virtual address va inside the open section.
	Store(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles

	// Load reads len(buf) bytes at va through the mechanism's current
	// mapping; legal inside or outside a section.
	Load(core int, va uint64, buf []byte, at engine.Cycles) engine.Cycles

	// Commit makes the open section durable; on return the section's
	// writes survive any crash.
	Commit(core int, at engine.Cycles) engine.Cycles

	// Abort rolls the open section back.
	Abort(core int, at engine.Cycles) engine.Cycles

	// StoreNT is a plain (non-failure-atomic) persistent store outside any
	// section.
	StoreNT(core int, va uint64, data []byte, at engine.Cycles) engine.Cycles

	// Crash discards the backend's volatile state (power failure). The
	// caller drops caches and TLBs.
	Crash()

	// Recover rebuilds volatile state from NVRAM and performs the
	// mechanism's crash recovery (rollback or replay).
	Recover() error

	// Drain completes background work (consolidation queues, post-commit
	// write-backs) — an orderly shutdown, used before comparing durable
	// state in tests and at the end of measurement runs.
	Drain(at engine.Cycles) engine.Cycles
}

// GlobalBackend is implemented by backends with a distributed-commit
// protocol for cross-shard (multi-arena) transactions. BeginGlobal opens a
// failure-atomic section exactly like Begin, but marks it as one whose
// write set may span structures owned by multiple metadata shards; the
// backend's Commit then guarantees all-or-nothing atomicity across every
// shard the section touched (for SSP: two-phase prepare/end records over
// the participant journal shards). Drivers fall back to plain Begin on
// backends without the interface — the logging designs are per-core-log
// atomic for any write set, so the distinction only exists where commit
// metadata is sharded.
type GlobalBackend interface {
	BeginGlobal(core int, at engine.Cycles) engine.Cycles
}

// RelaxedBackend is implemented by backends offering an epoch-batched
// relaxed-durability commit mode alongside the synchronous Commit.
//
// CommitRelaxed closes the open section exactly like Commit — on return
// the section is ACKNOWLEDGED and its writes are visible — but its
// durability point is deferred: the backend guarantees the section becomes
// durable within its configured epoch bound (for SSP:
// Config.DurabilityEpoch cycles, or earlier at a Sync, a Drain, or any
// synchronous flush of the section's metadata shard), and that a crash
// before that point loses relaxed sections ATOMICALLY — each one entirely
// present or entirely absent afterwards, never torn, and never reordered
// against a later durable section on the same metadata stream.
//
// Sync is the durability upgrade barrier: on return every section
// acknowledged before the call — relaxed or not — is durable. With the
// relaxed mode disabled (DurabilityEpoch = 0) CommitRelaxed must be
// bit-for-bit Commit and Sync free.
//
// Drivers fall back to Commit (and a no-op Sync) on backends without the
// interface — the logging baselines persist at commit unconditionally.
type RelaxedBackend interface {
	CommitRelaxed(core int, at engine.Cycles) engine.Cycles
	Sync(core int, at engine.Cycles) engine.Cycles
}

// IdleHardener is the optional idle-path extension of RelaxedBackend. The
// relaxed epoch age bound is enforced by committers: the commit whose
// timestamp crosses the bound pays the harden. A shard whose cores all go
// quiet therefore holds its last acknowledged-but-volatile epoch open
// until the next Sync or Drain — unbounded in host time. HardenIdle closes
// that gap: it hardens the calling core's own metadata shard's open epoch,
// if any, and reports whether a harden ran. Serving loops call it when a
// core has been idle long enough that no imminent commit will pick up the
// bill (the caller judges "long enough" in host time; simulated time does
// not advance on an idle core). A no-op on backends without the relaxed
// mode and on shards with nothing unsealed.
type IdleHardener interface {
	HardenIdle(core int, at engine.Cycles) (engine.Cycles, bool)
}

// ParallelAware is implemented by backends that support concurrent
// goroutine-per-core execution (machine.Machine.Run). SetParallel(true) is
// called before the core goroutines start, SetParallel(false) after they
// join; both calls happen with no simulated work in flight.
//
// While parallel mode is on, a backend may reorganise how it schedules
// background work (e.g. SSP batches commit-time page consolidation into
// epochs instead of running it inline) as long as crash consistency and
// the aggregate counter totals remain correct.
type ParallelAware interface {
	SetParallel(on bool)
}
