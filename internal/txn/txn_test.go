package txn

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/tlbsim"
	"repro/internal/vm"
)

func testEnv(t *testing.T, cores int) *Env {
	t.Helper()
	st := &stats.Stats{}
	mcfg := memsim.DefaultConfig()
	mcfg.DRAMBytes = 1 << 20
	mcfg.NVRAMBytes = 16 << 20
	mem := memsim.New(mcfg, st)
	lcfg := vm.DefaultLayoutConfig(cores)
	lcfg.MaxHeapPages = 256
	lcfg.SSPSlots = 16
	lcfg.JournalBytes = 8 << 10
	lcfg.LogBytes = 32 << 10
	layout := vm.NewLayout(mcfg, lcfg)
	env := &Env{
		Mem:           mem,
		Caches:        cachesim.New(cachesim.DefaultConfig(cores), mem, st),
		PT:            vm.NewPageTable(mem, layout),
		Frames:        vm.NewFrameAlloc(layout),
		Layout:        layout,
		Stats:         st,
		BarrierCycles: 30,
		STLBCycles:    7,
	}
	for c := 0; c < cores; c++ {
		env.TLBs = append(env.TLBs, tlbsim.NewTwoLevel(4, 8, st))
	}
	vm.Format(mem, layout)
	return env
}

func TestCores(t *testing.T) {
	if got := testEnv(t, 3).Cores(); got != 3 {
		t.Fatalf("Cores() = %d, want 3", got)
	}
}

func TestTranslateMissThenHit(t *testing.T) {
	env := testEnv(t, 1)
	frame := env.Frames.Alloc()
	env.PT.Set(5, frame, 0)

	va := vm.VAOf(5) + 24
	ppn, done := env.Translate(0, va, 100)
	if ppn != frame {
		t.Fatalf("miss translate: ppn %#x, want %#x", ppn, frame)
	}
	if done <= 100 {
		t.Fatalf("page walk charged no time (done=%d)", done)
	}
	if env.Stats.TLBMisses != 1 {
		t.Fatalf("TLBMisses = %d, want 1", env.Stats.TLBMisses)
	}

	ppn, done = env.Translate(0, va, 200)
	if ppn != frame {
		t.Fatalf("hit translate: ppn %#x, want %#x", ppn, frame)
	}
	if done != 200 {
		t.Fatalf("L1 TLB hit should be free in this model, done=%d", done)
	}
	if env.Stats.TLBHits != 1 {
		t.Fatalf("TLBHits = %d, want 1", env.Stats.TLBHits)
	}
}

func TestTranslateSTLBHitChargesLatency(t *testing.T) {
	env := testEnv(t, 1)
	// Fill well past the 4-entry L1 so early pages demote into the STLB.
	for vpn := 0; vpn < 6; vpn++ {
		env.PT.Set(vpn, env.Frames.Alloc(), 0)
		env.Translate(0, vm.VAOf(vpn), 0)
	}
	// vpn 0 should now be an L2 (STLB) resident: a lookup hits level 2 and
	// pays STLBCycles.
	before2 := env.Stats.TLB2Hits
	_, done := env.Translate(0, vm.VAOf(0), 1000)
	if env.Stats.TLB2Hits != before2+1 {
		t.Skipf("vpn 0 left the hierarchy entirely (evictions=%d); STLB path not reachable with this fill", env.Stats.TLBEvictions)
	}
	if done != 1000+env.STLBCycles {
		t.Fatalf("STLB hit charged %d cycles, want %d", done-1000, env.STLBCycles)
	}
}

func TestTranslatePerCoreTLBs(t *testing.T) {
	env := testEnv(t, 2)
	env.PT.Set(1, env.Frames.Alloc(), 0)
	env.Translate(0, vm.VAOf(1), 0)
	if env.TLBs[1].Contains(1) {
		t.Fatal("core 1's TLB was filled by core 0's translate")
	}
	if !env.TLBs[0].Contains(1) {
		t.Fatal("core 0's TLB missing the translation it just walked")
	}
}

func TestTranslateUnmappedPanics(t *testing.T) {
	env := testEnv(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Translate of an unmapped page did not panic")
		}
	}()
	env.Translate(0, vm.VAOf(99), 0)
}

func TestStatsForFallsBackToShared(t *testing.T) {
	env := testEnv(t, 2)
	if env.StatsFor(0) != env.Stats || env.StatsFor(1) != env.Stats {
		t.Fatal("StatsFor without shards must return the shared Stats")
	}
	sh := stats.NewSharded(2)
	env.PerCore = []*stats.Stats{sh.Shard(0), sh.Shard(1)}
	if env.StatsFor(0) != sh.Shard(0) || env.StatsFor(1) != sh.Shard(1) {
		t.Fatal("StatsFor with shards must return the core's shard")
	}
	env.StatsFor(0).Commits += 3
	env.StatsFor(1).Commits += 4
	if agg := sh.Aggregate(); agg.Commits != 7 {
		t.Fatalf("aggregate commits = %d, want 7", agg.Commits)
	}
}
