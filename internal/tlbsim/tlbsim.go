// Package tlbsim models the per-core data-TLB hierarchy that SSP extends: a
// 64-entry L1 DTLB (Table 2) backed by a 1024-entry L2 STLB (§4.3 sizes the
// SSP metadata cost for exactly this configuration). The two levels are
// exclusive; a page is TLB-resident while it lives in either. The backend
// learns about final departures through OnEvict — SSP uses that to maintain
// the per-page TLB reference counts that drive page consolidation (§3.4),
// so the STLB's reach is what lets consolidation batch many transactions.
package tlbsim

import (
	"repro/internal/memsim"
	"repro/internal/stats"
)

// VPN is a virtual page number (virtual address >> 12).
type VPN uint64

// node is one translation in an intrusive LRU list.
type node struct {
	vpn        VPN
	ppn        memsim.PAddr
	prev, next *node
}

// lruCache is an O(1) LRU map of bounded capacity.
type lruCache struct {
	cap  int
	m    map[VPN]*node
	head *node // most recent
	tail *node // least recent
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, m: make(map[VPN]*node, capacity)}
}

func (c *lruCache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) pushFront(n *node) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// get returns the node and refreshes its recency.
func (c *lruCache) get(vpn VPN) *node {
	n, ok := c.m[vpn]
	if !ok {
		return nil
	}
	c.unlink(n)
	c.pushFront(n)
	return n
}

// peek returns the node without touching recency.
func (c *lruCache) peek(vpn VPN) *node { return c.m[vpn] }

// insert adds n (not present); if the cache overflows, the LRU node is
// removed and returned.
func (c *lruCache) insert(n *node) *node {
	c.m[n.vpn] = n
	c.pushFront(n)
	if len(c.m) <= c.cap {
		return nil
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.m, victim.vpn)
	return victim
}

// remove deletes vpn if present, returning the node.
func (c *lruCache) remove(vpn VPN) *node {
	n, ok := c.m[vpn]
	if !ok {
		return nil
	}
	c.unlink(n)
	delete(c.m, vpn)
	return n
}

func (c *lruCache) clear() {
	c.m = make(map[VPN]*node, c.cap)
	c.head, c.tail = nil, nil
}

// TLB is one core's translation hierarchy.
type TLB struct {
	l1 *lruCache
	l2 *lruCache // nil when the STLB is disabled
	st *stats.Stats

	// OnEvict fires when a translation leaves the hierarchy entirely
	// (capacity eviction from the last level, or explicit Invalidate).
	OnEvict func(vpn VPN)
}

// New returns a single-level TLB with the given entry count (test configs
// and ablations).
func New(entries int, st *stats.Stats) *TLB {
	return NewTwoLevel(entries, 0, st)
}

// NewTwoLevel returns an L1 DTLB of l1Entries backed by an exclusive L2
// STLB of l2Entries (0 disables the second level).
func NewTwoLevel(l1Entries, l2Entries int, st *stats.Stats) *TLB {
	if l1Entries <= 0 {
		panic("tlbsim: l1 entries must be positive")
	}
	t := &TLB{l1: newLRUCache(l1Entries), st: st}
	if l2Entries > 0 {
		t.l2 = newLRUCache(l2Entries)
	}
	return t
}

// Size returns the total entry capacity across levels.
func (t *TLB) Size() int {
	if t.l2 == nil {
		return t.l1.cap
	}
	return t.l1.cap + t.l2.cap
}

// Lookup resolves vpn. level reports where it hit (1 = L1 DTLB, 2 = L2
// STLB, 0 = miss); an L2 hit promotes the entry to L1, demoting the L1
// victim into the STLB.
func (t *TLB) Lookup(vpn VPN) (ppn memsim.PAddr, level int, hit bool) {
	if n := t.l1.get(vpn); n != nil {
		t.st.TLBHits++
		return n.ppn, 1, true
	}
	if t.l2 != nil {
		if n := t.l2.remove(vpn); n != nil {
			t.st.TLB2Hits++
			t.promote(n)
			return n.ppn, 2, true
		}
	}
	t.st.TLBMisses++
	return 0, 0, false
}

// promote inserts n into L1, demoting L1's victim to the STLB; an STLB
// overflow leaves the hierarchy.
func (t *TLB) promote(n *node) {
	victim := t.l1.insert(n)
	if victim == nil {
		return
	}
	if t.l2 == nil {
		t.evicted(victim.vpn)
		return
	}
	if out := t.l2.insert(victim); out != nil {
		t.evicted(out.vpn)
	}
}

func (t *TLB) evicted(vpn VPN) {
	t.st.TLBEvictions++
	if t.OnEvict != nil {
		t.OnEvict(vpn)
	}
}

// Contains reports whether vpn is resident in either level, without
// touching recency or statistics.
func (t *TLB) Contains(vpn VPN) bool {
	if t.l1.peek(vpn) != nil {
		return true
	}
	return t.l2 != nil && t.l2.peek(vpn) != nil
}

// Insert installs a translation into L1 (refreshing it in place if already
// resident anywhere).
func (t *TLB) Insert(vpn VPN, ppn memsim.PAddr) {
	if n := t.l1.get(vpn); n != nil {
		n.ppn = ppn
		return
	}
	if t.l2 != nil {
		if n := t.l2.remove(vpn); n != nil {
			n.ppn = ppn
			t.promote(n)
			return
		}
	}
	t.promote(&node{vpn: vpn, ppn: ppn})
}

// UpdatePPN rewrites the cached translation for vpn if resident.
func (t *TLB) UpdatePPN(vpn VPN, ppn memsim.PAddr) {
	if n := t.l1.peek(vpn); n != nil {
		n.ppn = ppn
		return
	}
	if t.l2 != nil {
		if n := t.l2.peek(vpn); n != nil {
			n.ppn = ppn
		}
	}
}

// Invalidate removes vpn from the hierarchy, firing the eviction callback
// if it was resident.
func (t *TLB) Invalidate(vpn VPN) {
	if n := t.l1.remove(vpn); n != nil {
		t.evicted(vpn)
		return
	}
	if t.l2 != nil {
		if n := t.l2.remove(vpn); n != nil {
			t.evicted(vpn)
		}
	}
}

// Drop clears the hierarchy without firing callbacks — power failure (the
// refcounts it would maintain are volatile and vanish too).
func (t *TLB) Drop() {
	t.l1.clear()
	if t.l2 != nil {
		t.l2.clear()
	}
}

// Resident returns the set of currently resident VPNs (test helper).
func (t *TLB) Resident() []VPN {
	var out []VPN
	for vpn := range t.l1.m {
		out = append(out, vpn)
	}
	if t.l2 != nil {
		for vpn := range t.l2.m {
			out = append(out, vpn)
		}
	}
	return out
}
