package tlbsim

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/stats"
)

func TestLookupMissThenHit(t *testing.T) {
	st := &stats.Stats{}
	tlb := New(4, st)
	if _, _, ok := tlb.Lookup(5); ok {
		t.Fatal("empty TLB hit")
	}
	if st.TLBMisses != 1 {
		t.Errorf("misses = %d", st.TLBMisses)
	}
	tlb.Insert(5, 0x1000)
	ppn, level, ok := tlb.Lookup(5)
	if !ok || ppn != 0x1000 || level != 1 {
		t.Fatalf("lookup after insert: %v level=%d %v", ppn, level, ok)
	}
	if st.TLBHits != 1 {
		t.Errorf("hits = %d", st.TLBHits)
	}
}

func TestLRUEvictionFiresCallback(t *testing.T) {
	st := &stats.Stats{}
	tlb := New(2, st)
	var evicted []VPN
	tlb.OnEvict = func(v VPN) { evicted = append(evicted, v) }
	tlb.Insert(1, 0x1000)
	tlb.Insert(2, 0x2000)
	tlb.Lookup(1)         // make 2 the LRU
	tlb.Insert(3, 0x3000) // evicts 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if st.TLBEvictions != 1 {
		t.Errorf("evictions = %d", st.TLBEvictions)
	}
	if !tlb.Contains(1) || !tlb.Contains(3) || tlb.Contains(2) {
		t.Errorf("resident set wrong: %v", tlb.Resident())
	}
}

func TestTwoLevelDemotionAndPromotion(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 4, st)
	var evicted []VPN
	tlb.OnEvict = func(v VPN) { evicted = append(evicted, v) }
	// Fill beyond L1: victims demote to the STLB, not out.
	for v := VPN(1); v <= 4; v++ {
		tlb.Insert(v, memsim.PAddr(0x1000*uint64(v)))
	}
	if len(evicted) != 0 {
		t.Fatalf("demotion fired eviction callback: %v", evicted)
	}
	// 1 and 2 should be in the STLB now; a lookup promotes back to L1.
	_, level, ok := tlb.Lookup(1)
	if !ok || level != 2 {
		t.Fatalf("expected STLB hit for vpn 1, got level %d ok=%v", level, ok)
	}
	if st.TLB2Hits != 1 {
		t.Errorf("stlb hits = %d", st.TLB2Hits)
	}
	_, level, ok = tlb.Lookup(1)
	if !ok || level != 1 {
		t.Fatalf("promotion failed: level %d", level)
	}
	if tlb.Size() != 6 {
		t.Errorf("Size = %d", tlb.Size())
	}
}

func TestTwoLevelOverflowEvicts(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 2, st)
	evictions := 0
	tlb.OnEvict = func(VPN) { evictions++ }
	for v := VPN(1); v <= 10; v++ {
		tlb.Insert(v, 0x1000)
	}
	// Capacity 4 total: 6 departures.
	if evictions != 6 {
		t.Errorf("evictions = %d, want 6", evictions)
	}
	resident := tlb.Resident()
	if len(resident) != 4 {
		t.Errorf("resident = %v", resident)
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 2, st)
	tlb.Insert(1, 0x1000)
	tlb.Insert(1, 0x9000)
	ppn, _, ok := tlb.Lookup(1)
	if !ok || ppn != 0x9000 {
		t.Fatalf("in-place update failed: %#x", ppn)
	}
	if len(tlb.Resident()) != 1 {
		t.Error("duplicate entry created")
	}
	// Update an entry residing in the STLB.
	tlb.Insert(2, 0x2000)
	tlb.Insert(3, 0x3000)
	tlb.Insert(4, 0x4000) // 1 may now be in the STLB
	tlb.Insert(1, 0xA000)
	ppn, _, _ = tlb.Lookup(1)
	if ppn != 0xA000 {
		t.Errorf("STLB-resident update failed: %#x", ppn)
	}
}

func TestInvalidate(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 2, st)
	fired := 0
	tlb.OnEvict = func(VPN) { fired++ }
	tlb.Insert(7, 0x7000)
	tlb.Invalidate(7)
	if fired != 1 {
		t.Errorf("callback fired %d times", fired)
	}
	if tlb.Contains(7) {
		t.Error("entry survived invalidate")
	}
	tlb.Invalidate(7) // absent: no-op
	if fired != 1 {
		t.Error("invalidate of absent entry fired callback")
	}
	// Invalidate an STLB-resident entry.
	for v := VPN(1); v <= 4; v++ {
		tlb.Insert(v, 0x1000)
	}
	fired = 0
	tlb.Invalidate(1) // demoted to STLB by now
	if fired != 1 || tlb.Contains(1) {
		t.Error("STLB invalidate failed")
	}
}

func TestUpdatePPN(t *testing.T) {
	st := &stats.Stats{}
	tlb := New(4, st)
	tlb.Insert(3, 0x3000)
	tlb.UpdatePPN(3, 0x4000)
	ppn, _, _ := tlb.Lookup(3)
	if ppn != 0x4000 {
		t.Errorf("UpdatePPN did not stick: %#x", ppn)
	}
	tlb.UpdatePPN(99, 0x5000) // absent: no-op, no panic
}

func TestDropFiresNoCallbacks(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 2, st)
	fired := 0
	tlb.OnEvict = func(VPN) { fired++ }
	for v := VPN(1); v <= 4; v++ {
		tlb.Insert(v, 0x1000)
	}
	tlb.Drop()
	if fired != 0 {
		t.Error("Drop fired eviction callbacks")
	}
	if len(tlb.Resident()) != 0 {
		t.Error("entries survived Drop")
	}
}

func TestFullCapacityChurn(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(64, 256, st)
	evictions := 0
	tlb.OnEvict = func(VPN) { evictions++ }
	for i := 0; i < 1000; i++ {
		tlb.Insert(VPN(i), 0x1000)
	}
	if evictions != 1000-320 {
		t.Errorf("evictions = %d, want %d", evictions, 1000-320)
	}
	// The most recent 320 must be resident.
	for i := 1000 - 320; i < 1000; i++ {
		if !tlb.Contains(VPN(i)) {
			t.Fatalf("recent vpn %d evicted", i)
		}
	}
}

func TestExclusiveLevels(t *testing.T) {
	st := &stats.Stats{}
	tlb := NewTwoLevel(2, 4, st)
	for v := VPN(1); v <= 6; v++ {
		tlb.Insert(v, 0x1000)
	}
	// No vpn may be resident twice (exclusive hierarchy): Resident would
	// report duplicates.
	seen := map[VPN]bool{}
	for _, v := range tlb.Resident() {
		if seen[v] {
			t.Fatalf("vpn %d resident in both levels", v)
		}
		seen[v] = true
	}
}
